// Command gpurun runs one workload kernel on the gpusim simulator and dumps
// execution statistics — the simulator's debugging tool.
//
// Usage:
//
//	gpurun -kernel "PathFinder K1"
//	gpurun -kernel "GEMM K1" -disasm
//	gpurun -kernel "2DCONV K1" -trace 12 -n 30
//	gpurun -kernel "MVT K1" -inject "0:100:5"
//	gpurun -kernel "MVT K1" -inject "0:100:1" -model stuck-pred
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/kernels"
)

func main() {
	kernel := flag.String("kernel", "", `kernel name, e.g. "GEMM K1"`)
	scale := flag.String("scale", "small", "kernel scale: small or paper")
	disasm := flag.Bool("disasm", false, "print the kernel's assembly and exit")
	traceThread := flag.Int("trace", -1, "dump the dynamic instruction trace of one thread")
	traceLen := flag.Int("n", 50, "trace length cap")
	inject := flag.String("inject", "", "inject one fault, format thread:dyninst:bit")
	modelName := flag.String("model", "dest-value", "fault model for -inject: "+fault.ModelNames())
	warp := flag.Int("warp", 0, "SIMT lockstep warp width (0 = thread-serial scheduling)")
	intraStride := flag.Int("intra-stride", 0, "dynamic instructions between intra-CTA warp snapshots for -inject (0 = auto-tune, <0 = disable)")
	showStats := flag.Bool("stats", false, "report prepared-target cache stats after the run")
	compiled := flag.Bool("compiled", true, "execute via the pre-decoded compiled plan (false = reference interpreter; outcomes are bit-identical)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file (written on normal exit)")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on normal exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		fatal(err)
		fatal(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			fatal(err)
			runtime.GC()
			fatal(pprof.WriteHeapProfile(f))
			fatal(f.Close())
		}()
	}

	sc := kernels.ScaleSmall
	if *scale == "paper" {
		sc = kernels.ScalePaper
	}
	spec, ok := kernels.ByName(*kernel)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
		os.Exit(2)
	}
	inst, err := spec.Build(sc)
	fatal(err)

	if *disasm {
		fmt.Printf("// %s (%s, %s)\n", spec.Meta.Kernel, spec.Meta.Suite, spec.Meta.App)
		fmt.Print(inst.Target.Prog.String())
		return
	}

	inst.Target.IntraStride = *intraStride
	inst.Target.Interpret = !*compiled
	inst.Target.Cache = fault.DefaultPreparedCache()
	fatal(inst.Target.Prepare())
	prof := inst.Target.Profile()
	fmt.Printf("%s: grid %v block %v = %d threads, %d dynamic instructions\n",
		spec.Meta.Name(), inst.Target.Grid, inst.Target.Block,
		inst.Target.Threads(), prof.TotalDyn())

	if *warp > 0 {
		// Re-execute under SIMT lockstep scheduling and verify equivalence.
		dev := inst.Target.Init.Clone()
		res, err := gpusim.Execute(dev, &gpusim.Launch{
			Prog:      inst.Target.Prog,
			Grid:      inst.Target.Grid,
			Block:     inst.Target.Block,
			Params:    inst.Target.Params,
			WarpSize:  *warp,
			Interpret: !*compiled,
		})
		fatal(err)
		if res.Trap != nil {
			fatal(res.Trap)
		}
		fmt.Printf("warp=%d lockstep run: %d dynamic instructions (scheduling-equivalent: %v)\n",
			*warp, res.TotalDyn, res.TotalDyn == prof.TotalDyn())
	}

	var minI, maxI int64
	minI = prof.Threads[0].ICnt
	for i := range prof.Threads {
		if c := prof.Threads[i].ICnt; c < minI {
			minI = c
		} else if c > maxI {
			maxI = c
		}
	}
	fmt.Printf("thread iCnt: min %d, max %d\n", minI, maxI)
	fmt.Printf("exhaustive fault sites: %d\n", fault.NewSpace(prof).Total())

	if *traceThread >= 0 {
		tp := prof.Threads[*traceThread]
		n := int(tp.ICnt)
		if n > *traceLen {
			n = *traceLen
		}
		fmt.Printf("trace of thread %d (first %d of %d):\n", *traceThread, n, tp.ICnt)
		for i := 0; i < n; i++ {
			pc := gpusim.PC(tp.PCs[i])
			mark := " "
			if gpusim.Wrote(tp.PCs[i]) {
				mark = "*"
			}
			fmt.Printf("  %5d %s pc=%-4d %s\n", i, mark, pc, inst.Target.Prog.Instrs[pc].String())
		}
	}

	if *inject != "" {
		var site fault.Site
		if _, err := fmt.Sscanf(*inject, "%d:%d:%d", &site.Thread, &site.DynInst, &site.Bit); err != nil {
			fatal(fmt.Errorf("bad -inject %q: %v", *inject, err))
		}
		model, err := fault.ParseModel(*modelName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		outcome, err := inst.Target.RunSiteModel(site, model)
		fatal(err)
		fmt.Printf("injection %v (%s) -> %s\n", site, model, outcome)
	}

	if *showStats {
		fmt.Printf("%s\n", fault.DefaultPreparedCache().Stats())
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
