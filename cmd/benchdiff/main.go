// Command benchdiff compares two benchjson outputs (benchmark name -> ns/op)
// and fails when any benchmark present in both regressed beyond the allowed
// percentage. It is the CI gate that keeps the perf trajectory across PRs
// honest: BENCH_prN.json files are recorded by `make bench`, and `make ci`
// diffs the fresh run against the previous PR's file.
//
// Usage:
//
//	benchdiff -max-regress 25 BENCH_pr2.json BENCH_pr3.json
//	benchdiff -allow-missing -max-regress 25 BENCH_pr2.json BENCH_pr3.json
//
// Benchmarks present in only one file (added or retired) are listed but
// never fail the gate. With -allow-missing, a nonexistent OLD file is not an
// error either: the diff is skipped with a note and the gate passes, so
// `make ci` works on fresh clones that lack the previous PR's recording.
//
// -min-time-ms sets a noise floor: a benchmark whose baseline AND current
// ns/op are both below the floor is reported (as "noisy") but cannot fail
// the gate. Sub-millisecond benches swing tens of percent with scheduler
// and GC jitter at smoke-mode sample counts — interleaved reruns show the
// medians unchanged — so gating them produces flaky CI, not protection.
// Anything slow enough to measure reliably stays gated.
//
// -drift-correct (default on) makes the gate robust to whole-machine speed
// drift between the two recordings: on shared or single-vCPU hosts the
// same tree can measure tens of percent slower wholesale when a co-tenant
// is busy, which would fail every benchmark at once while a genuinely
// regressed one hides in the crowd. The correction divides each
// benchmark's old->new ratio by the suite's median ratio (computed over
// benchmarks above the noise floor) before gating, so a uniform slowdown
// cancels out and only benchmarks that slowed down relative to the rest
// of the suite can fail. The raw delta is still reported next to the
// corrected one, and the drift factor is printed so a wholesale slowdown
// stays visible even though it no longer flakes the gate.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	maxRegress := flag.Float64("max-regress", 25, "allowed slowdown in percent before failing")
	allowMissing := flag.Bool("allow-missing", false, "pass (with a note) when the OLD baseline file does not exist")
	minTimeMS := flag.Float64("min-time-ms", 0, "noise floor: benchmarks under this many ms in both files never fail the gate")
	driftCorrect := flag.Bool("drift-correct", true, "divide per-benchmark ratios by the suite median ratio, cancelling whole-machine speed drift")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress pct] [-allow-missing] [-drift-correct] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRes, err := load(flag.Arg(0))
	if err != nil && *allowMissing && errors.Is(err, os.ErrNotExist) {
		fmt.Printf("benchdiff: baseline %s missing; skipping regression gate\n", flag.Arg(0))
		return
	}
	fatal(err)
	newRes, err := load(flag.Arg(1))
	fatal(err)

	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		names = append(names, name)
	}
	sort.Strings(names)

	// Median old->new ratio over the reliably-measurable shared benchmarks:
	// the suite-wide machine-speed drift between the two recordings. At
	// least three such benchmarks are required — a median of one or two is
	// just that benchmark, and correcting by it would blind the gate.
	drift := 1.0
	if *driftCorrect {
		var ratios []float64
		for _, name := range names {
			prev, cur := oldRes[name], newRes[name]
			if prev > 0 && cur > 0 && prev >= *minTimeMS*1e6 && cur >= *minTimeMS*1e6 {
				ratios = append(ratios, cur/prev)
			}
		}
		if len(ratios) >= 3 {
			sort.Float64s(ratios)
			drift = ratios[len(ratios)/2]
			if len(ratios)%2 == 0 {
				drift = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
			}
			fmt.Printf("benchdiff: suite drift %+.1f%% (median of %d ratios); gating relative to it\n",
				100*(drift-1), len(ratios))
		}
	}

	regressions := 0
	for _, name := range names {
		prev := oldRes[name]
		cur, ok := newRes[name]
		if !ok {
			fmt.Printf("gone     %-36s (was %s)\n", name, ms(prev))
			continue
		}
		if prev <= 0 {
			continue
		}
		delta := 100 * (cur - prev) / prev
		gated := 100 * (cur/(prev*drift) - 1)
		note := ""
		if drift != 1.0 {
			note = fmt.Sprintf(", %+.1f%% raw", delta)
		}
		if gated > *maxRegress && prev < *minTimeMS*1e6 && cur < *minTimeMS*1e6 {
			fmt.Printf("noisy    %-36s %s -> %s (%+.1f%%%s, under %.0fms floor)\n",
				name, ms(prev), ms(cur), gated, note, *minTimeMS)
		} else if gated > *maxRegress {
			regressions++
			fmt.Printf("REGRESS  %-36s %s -> %s (%+.1f%%%s, limit %+.1f%%)\n",
				name, ms(prev), ms(cur), gated, note, *maxRegress)
		} else {
			fmt.Printf("ok       %-36s %s -> %s (%+.1f%%%s)\n", name, ms(prev), ms(cur), gated, note)
		}
	}
	added := make([]string, 0)
	for name := range newRes {
		if _, ok := oldRes[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Printf("new      %-36s %s (no baseline)\n", name, ms(newRes[name]))
	}

	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed more than %.1f%% vs %s\n",
			regressions, *maxRegress, flag.Arg(0))
		os.Exit(1)
	}
}

func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func ms(ns float64) string {
	return fmt.Sprintf("%.1fms", ns/1e6)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
