// Command benchdiff compares two benchjson outputs (benchmark name -> ns/op)
// and fails when any benchmark present in both regressed beyond the allowed
// percentage. It is the CI gate that keeps the perf trajectory across PRs
// honest: BENCH_prN.json files are recorded by `make bench`, and `make ci`
// diffs the fresh run against the previous PR's file.
//
// Usage:
//
//	benchdiff -max-regress 25 BENCH_pr2.json BENCH_pr3.json
//	benchdiff -allow-missing -max-regress 25 BENCH_pr2.json BENCH_pr3.json
//
// Benchmarks present in only one file (added or retired) are listed but
// never fail the gate. With -allow-missing, a nonexistent OLD file is not an
// error either: the diff is skipped with a note and the gate passes, so
// `make ci` works on fresh clones that lack the previous PR's recording.
//
// -min-time-ms sets a noise floor: a benchmark whose baseline AND current
// ns/op are both below the floor is reported (as "noisy") but cannot fail
// the gate. Sub-millisecond benches swing tens of percent with scheduler
// and GC jitter at smoke-mode sample counts — interleaved reruns show the
// medians unchanged — so gating them produces flaky CI, not protection.
// Anything slow enough to measure reliably stays gated.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	maxRegress := flag.Float64("max-regress", 25, "allowed slowdown in percent before failing")
	allowMissing := flag.Bool("allow-missing", false, "pass (with a note) when the OLD baseline file does not exist")
	minTimeMS := flag.Float64("min-time-ms", 0, "noise floor: benchmarks under this many ms in both files never fail the gate")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress pct] [-allow-missing] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRes, err := load(flag.Arg(0))
	if err != nil && *allowMissing && errors.Is(err, os.ErrNotExist) {
		fmt.Printf("benchdiff: baseline %s missing; skipping regression gate\n", flag.Arg(0))
		return
	}
	fatal(err)
	newRes, err := load(flag.Arg(1))
	fatal(err)

	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		prev := oldRes[name]
		cur, ok := newRes[name]
		if !ok {
			fmt.Printf("gone     %-36s (was %s)\n", name, ms(prev))
			continue
		}
		if prev <= 0 {
			continue
		}
		delta := 100 * (cur - prev) / prev
		if delta > *maxRegress && prev < *minTimeMS*1e6 && cur < *minTimeMS*1e6 {
			fmt.Printf("noisy    %-36s %s -> %s (%+.1f%%, under %.0fms floor)\n",
				name, ms(prev), ms(cur), delta, *minTimeMS)
		} else if delta > *maxRegress {
			regressions++
			fmt.Printf("REGRESS  %-36s %s -> %s (%+.1f%%, limit %+.1f%%)\n",
				name, ms(prev), ms(cur), delta, *maxRegress)
		} else {
			fmt.Printf("ok       %-36s %s -> %s (%+.1f%%)\n", name, ms(prev), ms(cur), delta)
		}
	}
	added := make([]string, 0)
	for name := range newRes {
		if _, ok := oldRes[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Printf("new      %-36s %s (no baseline)\n", name, ms(newRes[name]))
	}

	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed more than %.1f%% vs %s\n",
			regressions, *maxRegress, flag.Arg(0))
		os.Exit(1)
	}
}

func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func ms(ns float64) string {
	return fmt.Sprintf("%.1fms", ns/1e6)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
